package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"hal/internal/analysis"
)

// vetConfig mirrors the JSON config `go vet` hands a -vettool for each
// package (cmd/go/internal/work.vetConfig).  Fields the suite does not
// need are omitted; unknown JSON keys are ignored by encoding/json.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	ModulePath  string
	GoFiles     []string
	ImportMap   map[string]string // import path in source -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool   // canonical package path -> in std
	PackageVetx map[string]string // canonical package path -> dependency vetx (facts) file
	VetxOnly    bool              // compute facts only, report nothing
	VetxOutput  string            // where to write this package's facts

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the unitchecker protocol and
// returns the process exit code.
func runVetUnit(cfgPath string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "halvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Standard-library packages are not analyzed: the suite's model of std
	// blocking behavior is the builtin table in handlernoblock, so their
	// facts are empty.  (cfg.Standard only marks the unit's *deps*; the std
	// unit itself is recognized by its missing ModulePath.)  Writing the
	// (empty) vetx file is still mandatory — go vet caches it.
	if cfg.Standard[cfg.ImportPath] || cfg.ModulePath == "" || len(cfg.GoFiles) == 0 {
		return writeFacts(cfg.VetxOutput, analysis.PackageFacts{})
	}

	fset := token.NewFileSet()
	exportFor := func(path string) string {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		return cfg.PackageFile[path]
	}
	loaded, err := analysis.Check(fset, cfg.ImportPath, cfg.GoFiles, exportFor)
	if err != nil {
		// A package that fails to load is a package the suite silently did
		// not check — fail loudly even when go vet would accept success
		// (SucceedOnTypecheckFailure), so CI cannot green-light an unvetted
		// tree.  The compiler will report the root cause too; our message
		// names the invariant gap.
		fmt.Fprintf(os.Stderr, "halvet: type-checking %s failed (package NOT analyzed): %v\n", cfg.ImportPath, err)
		return 1
	}

	depFactCache := map[string]analysis.PackageFacts{}
	depFacts := func(pkgPath, analyzer string) json.RawMessage {
		facts, ok := depFactCache[pkgPath]
		if !ok {
			facts = analysis.PackageFacts{}
			if vetx := cfg.PackageVetx[pkgPath]; vetx != "" {
				if raw, err := os.ReadFile(vetx); err == nil {
					_ = json.Unmarshal(raw, &facts) // corrupt vetx = no facts
				}
			}
			depFactCache[pkgPath] = facts
		}
		return facts[analyzer]
	}

	used := map[analysis.DirectiveKey]bool{}
	findings, facts, err := analysis.AnalyzeUnit(loaded, suite, cfg.VetxOnly, depFacts, used)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halvet:", err)
		return 1
	}
	if code := writeFacts(cfg.VetxOutput, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	// Target packages (the ones go vet was asked about, not dependencies)
	// also get the staleness sweep: a suppression that fired for no
	// analyzer this run has rotted into blanket permission.
	findings = append(findings, analysis.StaleDirectives(fset, loaded.Files, suite, used)...)
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Offset < findings[j].Pos.Offset
	})
	for _, f := range findings {
		// go vet prefixes output with the package; keep file paths short
		// relative to the package directory.
		if cfg.Dir != "" && strings.HasPrefix(f.Pos.Filename, cfg.Dir+string(os.PathSeparator)) {
			f.Pos.Filename = f.Pos.Filename[len(cfg.Dir)+1:]
		}
		fmt.Fprintln(os.Stderr, f)
	}
	return 2
}

// writeFacts serializes a vetx fact file at path (mandatory even when
// empty: go vet records it in the build cache).
func writeFacts(path string, facts analysis.PackageFacts) int {
	if path == "" {
		return 0
	}
	blob, err := json.Marshal(facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "halvet:", err)
		return 1
	}
	if err := os.WriteFile(path, blob, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "halvet:", err)
		return 1
	}
	return 0
}
